package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRemoteRetriesOverloadThenSucceeds exercises the client half of
// the overload contract: a daemon answering 429 + Retry-After must be
// retried (the request was not admitted, so a retry cannot duplicate
// it), and the retry must eventually be served.
func TestRemoteRetriesOverloadThenSucceeds(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if n := hits.Add(1); n <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"session overloaded"}`)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer srv.Close()

	r, err := newRemote(srv.URL, 3)
	if err != nil {
		t.Fatalf("newRemote: %v", err)
	}
	resp, err := r.do(http.MethodPost, "/jobs", []byte(`{}`))
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server hit %d times, want 3 (two 429s then success)", got)
	}
}

// TestRemoteRetriesExhausted asserts the retry budget is a hard bound:
// retries+1 total attempts, then the last refusal is surfaced.
func TestRemoteRetriesExhausted(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	r, err := newRemote(srv.URL, 2)
	if err != nil {
		t.Fatalf("newRemote: %v", err)
	}
	if _, err := r.do(http.MethodGet, "/healthz", nil); err == nil {
		t.Fatal("do succeeded against an always-503 daemon")
	} else if !strings.Contains(err.Error(), "503") {
		t.Fatalf("error %q does not name the refusal status", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server hit %d times, want 3 (1 try + 2 retries)", got)
	}
}

// TestRemotePermanentErrorNotRetried asserts 4xx client errors other
// than 429 pass straight through for the caller to decode — retrying
// a malformed request would never help.
func TestRemotePermanentErrorNotRetried(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"unknown benchmark"}`)
	}))
	defer srv.Close()

	r, err := newRemote(srv.URL, 5)
	if err != nil {
		t.Fatalf("newRemote: %v", err)
	}
	resp, err := r.do(http.MethodPost, "/run", []byte(`{"bench":"nope"}`))
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server hit %d times, want exactly 1", got)
	}
}

// TestRemoteRetriesDialError asserts transport-level failures (daemon
// not running yet) are retried and reported with the usual hint.
func TestRemoteRetriesDialError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {}))
	url := srv.URL
	srv.Close() // nothing listens here any more

	r, err := newRemote(url, 1)
	if err != nil {
		t.Fatalf("newRemote: %v", err)
	}
	start := time.Now()
	if _, err := r.do(http.MethodGet, "/healthz", nil); err == nil {
		t.Fatal("do succeeded against a closed port")
	} else if !strings.Contains(err.Error(), "is jossd running") {
		t.Fatalf("error %q lacks the daemon hint", err)
	}
	// One backoff sleep happened (attempt 0 → retry 1): base/2 ≤ d ≤ base.
	if elapsed := time.Since(start); elapsed < retryBase/2 {
		t.Fatalf("retried after %v, want at least %v of backoff", elapsed, retryBase/2)
	}
}

func TestRetryDelay(t *testing.T) {
	if d := retryDelay(0, "3"); d != 3*time.Second {
		t.Errorf("retryDelay(0, \"3\") = %v, want 3s (Retry-After wins)", d)
	}
	if d := retryDelay(0, "9999"); d != retryCap {
		t.Errorf("retryDelay(0, \"9999\") = %v, want cap %v", d, retryCap)
	}
	if d := retryDelay(0, "0"); d != 0 {
		t.Errorf("retryDelay(0, \"0\") = %v, want 0", d)
	}
	for attempt := 0; attempt < 40; attempt++ {
		d := retryDelay(attempt, "")
		if d < retryBase/2 || d > retryCap {
			t.Errorf("retryDelay(%d, \"\") = %v, want within [%v, %v]",
				attempt, d, retryBase/2, retryCap)
		}
	}
	// A garbage Retry-After falls back to backoff, not a panic or 0.
	if d := retryDelay(0, "soon"); d < retryBase/2 || d > retryBase {
		t.Errorf("retryDelay(0, \"soon\") = %v, want backoff in [%v, %v]",
			d, retryBase/2, retryBase)
	}
}
