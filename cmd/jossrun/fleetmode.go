package main

import (
	"fmt"
	"os"
	"strings"

	"joss/internal/fleet"
	"joss/internal/service"
	"joss/internal/workloads"
)

// splitList parses a comma-separated flag value; empty and "all" both
// mean "everything" (the coordinator fills in the full set).
func splitList(s string) []string {
	if s == "" || strings.EqualFold(s, "all") {
		return nil
	}
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// fleetSweep shards one sweep across the -fleet daemons and prints the
// merged result plus the degradation report. The merged per-cell
// reports are byte-identical to a single daemon's /sweep response —
// failover, spillover and shard deaths change only the telemetry.
func fleetSweep(targets []string, benchList, schedList string, speedup, scale float64, seed int64, repeats int, batch bool, showMetrics bool) error {
	benches := splitList(benchList)
	scheds := splitList(schedList)
	if speedup > 1 {
		if len(scheds) != 0 {
			return fmt.Errorf("-speedup picks the constrained JOSS scheduler; drop -sched or -speedup")
		}
		scheds = []string{constrainedName("JOSS", speedup)}
	}

	coord, err := fleet.New(fleet.Config{
		Shards: targets,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "jossrun: "+format+"\n", args...)
		},
		OnCellMerged: func(bench, sched, shard string) {
			fmt.Fprintf(os.Stderr, "jossrun: %s/%s served by %s\n", bench, sched, shard)
		},
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	res, deg, err := coord.Sweep(service.WireSweepRequest{
		Benchmarks: benches,
		Schedulers: scheds,
		Scale:      scale,
		Seed:       &seed,
		Repeats:    repeats,
		Batch:      batchField(batch),
	})
	printFleetResult(res, deg)
	if showMetrics {
		printFleetMetrics(coord, targets)
	}
	return err
}

func printFleetResult(res service.WireSweepResult, deg fleet.Degradation) {
	// Print in the daemon's canonical order: Fig8 benchmark order,
	// scheduler catalog order.
	var benches []string
	for _, wl := range workloads.Fig8Configs() {
		benches = append(benches, wl.Name)
	}
	for _, b := range benches {
		m := res.Reports[b]
		if len(m) == 0 {
			continue
		}
		for _, s := range service.SchedulerNames {
			rep, ok := m[s]
			if !ok {
				continue
			}
			fmt.Printf("\n%s:", b)
			printReport(rep)
		}
		// Schedulers outside the standard catalog (e.g. JOSS+1.4X).
		for s, rep := range m {
			if !isCatalogSched(s) {
				fmt.Printf("\n%s:", b)
				printReport(rep)
			}
		}
	}
	fmt.Printf("\nfleet           %d/%d units over %d shard workers in %.3f s\n",
		res.UnitsDone, res.Units, res.Workers, res.ElapsedSec)
	fmt.Printf("plan searches   %d evaluations fleet-wide (0 = all shards served resident plans)\n", res.PlanEvals)
	if !deg.Degraded {
		fmt.Printf("degradation     none (all shards healthy)\n")
		return
	}
	fmt.Printf("degradation     %d shard failures, %d cells reassigned, %d spilled over, %d retries, %d duplicate frames dropped\n",
		len(deg.FailedShards), deg.ReassignedCells, deg.SpilloverCells, deg.Retries, deg.DuplicateFrames)
	for _, f := range deg.FailedShards {
		fmt.Printf("  shard %s: %s (%d cells reassigned)\n", f.Shard, f.Reason, f.CellsLost)
	}
	if len(deg.LostCells) > 0 {
		fmt.Printf("  LOST: %s\n", strings.Join(deg.LostCells, ", "))
	}
	fmt.Printf("  survivors: %s\n", strings.Join(deg.Survivors, ", "))
}

// fleetWarmup pre-trains each shard's ring slice in parallel so a
// following fleet sweep over the same grid, scale and seed performs
// zero plan searches on every shard. A failed shard's slice stays cold
// (trained lazily by the next sweep) and maps to the retriable exit.
func fleetWarmup(targets []string, benchList, schedList string, speedup, scale float64, seed int64) error {
	scheds := splitList(schedList)
	if speedup > 1 {
		if len(scheds) != 0 {
			return fmt.Errorf("-speedup picks the constrained JOSS scheduler; drop -sched or -speedup")
		}
		scheds = []string{constrainedName("JOSS", speedup)}
	}
	coord, err := fleet.New(fleet.Config{
		Shards: targets,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "jossrun: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	res, err := coord.Warmup(service.WireTrainRequest{
		Benchmarks: splitList(benchList),
		Schedulers: scheds,
		Scale:      scale,
		Seed:       &seed,
	})
	for _, sw := range res.Shards {
		if sw.Err != "" {
			fmt.Printf("shard %s: FAILED (%s); its %d benches stay cold\n", sw.Shard, sw.Err, len(sw.Benchmarks))
			continue
		}
		r := sw.Result
		fmt.Printf("shard %s: %d benches, %d keys (%d trained, %d cached, %d skipped, %d failed), %d early-stopped runs\n",
			sw.Shard, len(sw.Benchmarks), r.Keys, r.Trained, r.Cached, r.Skipped, r.Failed, r.EarlyStopped)
	}
	fmt.Printf("\nfleet warm-up   %d keys over %d shards in %.3f s: %d trained, %d cached, %d skipped, %d failed\n",
		res.Keys, len(res.Shards), res.ElapsedSec, res.Trained, res.Cached, res.Skipped, res.Failed)
	if err != nil {
		// Warm-up is an optimisation: a cold slice trains lazily, so an
		// incomplete pass is retriable, not fatal.
		return &fleet.TransientError{Code: 0, Err: err}
	}
	return nil
}

func isCatalogSched(name string) bool {
	for _, s := range service.SchedulerNames {
		if s == name {
			return true
		}
	}
	return false
}
