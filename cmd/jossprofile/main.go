// Command jossprofile runs the offline platform-characterisation stage
// of JOSS (paper §4, Figure 4): it executes the 41 synthetic
// benchmarks at every <TC, NC, fC, fM> configuration on the simulated
// TX2, fits the performance, CPU power and memory power models by
// multivariate polynomial regression, and reports the per-placement
// fit quality and idle-power characterisation.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"joss/internal/models"
	"joss/internal/platform"
	"joss/internal/profiling"
	"joss/internal/synth"
	"joss/internal/xval"
)

func main() {
	os.Exit(run())
}

// run returns the exit code instead of calling os.Exit so the deferred
// profile flush (-cpuprofile/-memprofile) happens on every path.
func run() (code int) {
	verbose := flag.Bool("v", false, "also dump model coefficients")
	out := flag.String("o", "", "write the trained model set as JSON to this file")
	kfold := flag.Int("xval", 0, "also run k-fold cross-validation with this k (e.g. 5)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	mutexProfile := flag.String("mutexprofile", "", "write a contended-mutex profile to this file on exit")
	blockProfile := flag.String("blockprofile", "", "write a goroutine-blocking profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.StartProfiles(profiling.Profiles{
		CPU: *cpuProfile, Mem: *memProfile, Mutex: *mutexProfile, Block: *blockProfile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "jossprofile:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "jossprofile:", err)
			if code == 0 {
				code = 1
			}
		}
	}()

	o := platform.DefaultOracle()
	fmt.Printf("profiling %d synthetic benchmarks x %d configurations...\n",
		len(synth.Suite()), len(o.Spec.Configs()))
	rows := synth.Profile(o)
	fmt.Printf("collected %d profile rows\n\n", len(rows))

	set, err := models.Train(o, rows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jossprofile:", err)
		return 1
	}

	var pls []platform.Placement
	for pl := range set.ByPlacement {
		pls = append(pls, pl)
	}
	sort.Slice(pls, func(i, j int) bool {
		if pls[i].TC != pls[j].TC {
			return pls[i].TC < pls[j].TC
		}
		return pls[i].NC < pls[j].NC
	})

	fmt.Println("model fit quality (R^2) per placement:")
	fmt.Printf("%-14s %-12s %-12s %-12s\n", "placement", "performance", "CPU power", "mem power")
	for _, pl := range pls {
		pm := set.ByPlacement[pl]
		fmt.Printf("%-14s %-12.4f %-12.4f %-12.4f\n",
			pl.String(), pm.Perf.R2, pm.CPUPow.R2, pm.MemPow.R2)
	}

	fmt.Println("\nidle power characterisation:")
	for tc := platform.CoreType(0); tc < platform.NumCoreTypes; tc++ {
		fmt.Printf("  %s cluster:", tc)
		for fc := range platform.CPUFreqsGHz {
			fmt.Printf("  %.2fGHz=%.3fW", platform.CPUFreqsGHz[fc], set.IdleCPUW[tc][fc])
		}
		fmt.Println()
	}
	fmt.Printf("  memory:   ")
	for fm := range platform.MemFreqsGHz {
		fmt.Printf("  %.2fGHz=%.3fW", platform.MemFreqsGHz[fm], set.IdleMemW[fm])
	}
	fmt.Println()

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jossprofile:", err)
			return 1
		}
		if err := set.Save(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "jossprofile:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "jossprofile:", err)
			return 1
		}
		fmt.Printf("\nmodel set written to %s\n", *out)
	}

	if *kfold > 1 {
		fmt.Printf("\nrunning %d-fold cross-validation...\n", *kfold)
		rep, err := xval.Run(o, *kfold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jossprofile:", err)
			return 1
		}
		fmt.Printf("%-6s %-12s %-12s %-12s %s\n", "fold", "performance", "CPU power", "mem power", "examples")
		for _, f := range rep.Folds {
			fmt.Printf("%-6d %-12.4f %-12.4f %-12.4f %d\n", f.Fold, f.PerfAcc, f.CPUAcc, f.MemAcc, f.Examples)
		}
		fmt.Printf("%-6s %-12.4f %-12.4f %-12.4f\n", "mean", rep.PerfMean, rep.CPUMean, rep.MemMean)
	}

	if *verbose {
		fmt.Println("\ncoefficients (intercept, linear, quadratic, interactions):")
		for _, pl := range pls {
			pm := set.ByPlacement[pl]
			fmt.Printf("%s\n  perf: %v\n  cpu:  %v\n  mem:  %v\n",
				pl.String(), pm.Perf.Coef, pm.CPUPow.Coef, pm.MemPow.Coef)
		}
	}
	return 0
}
