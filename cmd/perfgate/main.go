// Command perfgate is the CI performance regression gate: it compares
// a freshly generated BENCH_*.json (see `jossbench bench`) against the
// committed baseline and exits non-zero when simulator throughput
// drops by more than the threshold on any benchmark both files report
// tasks_per_s for.
//
// Usage:
//
//	perfgate -baseline BASELINE.json [-threshold 0.20] [CANDIDATE.json]
//
// Without an explicit candidate, the newest BENCH_*.json in the
// working directory that is not the baseline is compared.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// benchFile mirrors the fields of jossbench's BenchReport that the
// gate reads; unknown fields are ignored so the formats can evolve
// independently.
type benchFile struct {
	Timestamp  string `json:"timestamp"`
	Benchmarks []struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"benchmarks"`
}

func readBench(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &bf, nil
}

// newestBench finds the most recent BENCH_*.json (lexicographic on the
// timestamped name, which matches recency) that is not the baseline.
func newestBench(baseline string) (string, error) {
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return "", err
	}
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		if filepath.Clean(matches[i]) != filepath.Clean(baseline) {
			return matches[i], nil
		}
	}
	return "", fmt.Errorf("no BENCH_*.json candidate found (baseline %s)", baseline)
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline BENCH_*.json (required)")
	threshold := flag.Float64("threshold", 0.20,
		"maximum tolerated fractional tasks/s drop before the gate fails")
	flag.Parse()
	if *baseline == "" || flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: perfgate -baseline BASELINE.json [-threshold F] [CANDIDATE.json]")
		os.Exit(2)
	}

	candidate := ""
	if flag.NArg() == 1 {
		candidate = flag.Arg(0)
	} else {
		var err error
		candidate, err = newestBench(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfgate:", err)
			os.Exit(2)
		}
	}

	base, err := readBench(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}
	cand, err := readBench(candidate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}

	candRate := make(map[string]float64)
	for _, b := range cand.Benchmarks {
		if v, ok := b.Metrics["tasks_per_s"]; ok {
			candRate[b.Name] = v
		}
	}

	fmt.Printf("perfgate: %s (baseline) vs %s, threshold %.0f%% tasks/s drop\n",
		*baseline, candidate, *threshold*100)
	failed := false
	compared := 0
	for _, b := range base.Benchmarks {
		baseV, ok := b.Metrics["tasks_per_s"]
		if !ok || baseV <= 0 {
			continue
		}
		candV, ok := candRate[b.Name]
		if !ok {
			fmt.Printf("  FAIL %-24s missing from candidate\n", b.Name)
			failed = true
			continue
		}
		compared++
		drop := 1 - candV/baseV
		status := "ok  "
		if drop > *threshold {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("  %s %-24s %12.0f -> %12.0f tasks/s (%+.1f%%)\n",
			status, b.Name, baseV, candV, -drop*100)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "perfgate: baseline carries no tasks_per_s metrics")
		os.Exit(2)
	}
	if failed {
		fmt.Println("perfgate: FAILED — throughput regressed beyond the threshold")
		os.Exit(1)
	}
	fmt.Println("perfgate: passed")
}
