// Command perfgate is the CI performance regression gate: it compares
// a freshly generated BENCH_*.json (see `jossbench bench`) against the
// committed baseline and exits non-zero when simulator throughput
// drops by more than the threshold on any benchmark both files report
// tasks_per_s for — or when a warm-path row (benchmarks named *Warm,
// the Reset-recycled executor iterations) regresses in allocs/op or
// B/op beyond their thresholds. Allocation counts are noise-free where
// throughput is not, so the memory gates catch regressions that hide
// inside tasks/s variance.
//
// The gate additionally holds the batched-lockstep rows against each
// other inside the candidate report: BatchedSweepWarm runs the exact
// request SessionSweepWarm runs, with batched claims instead of scalar
// ⟨cell, repeat⟩ units. Batching must keep allocs/op well under the
// scalar row (-batchallocratio) — a silent fall-back to scalar units
// would converge the two rows and trips this first — and must not fall
// meaningfully behind it in tasks/s (-batchspeedup, a loose floor
// because single-core CI runners hide the cell ping-pong batching
// removes; see PERF.md).
//
// A second candidate-internal pair holds plan pre-training to its
// contract: PretrainedSweep (the ColdSweep request over a Train-warmed
// plan cache) must report zero plan evaluations — the deterministic
// proof that trained plans are adopted instead of re-searched — and
// must stay within -pretrainratio of ColdSweep's ns/op, a loose
// parity ceiling: single-core runners hide most of the search cost
// the warm path deletes (see PERF.md PR 9), so the time gate only
// catches the rows diverging wildly, and the evals gate is the
// contract.
//
// A third candidate-internal check is absolute: the MetricsHotPath row
// must report exactly 0 allocs/op — the observability layer's standing
// contract that metric updates never allocate on the serving path.
//
// Usage:
//
//	perfgate -baseline BASELINE.json [-threshold 0.20]
//	         [-allocthreshold 0.10] [-bytesthreshold 0.30]
//	         [-batchspeedup 0.85] [-batchallocratio 0.75]
//	         [-pretrainratio 1.10] [CANDIDATE.json]
//
// Without an explicit candidate, the newest BENCH_*.json in the
// working directory that is not the baseline is compared.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// benchFile mirrors the fields of jossbench's BenchReport that the
// gate reads; unknown fields are ignored so the formats can evolve
// independently.
type benchFile struct {
	Timestamp  string       `json:"timestamp"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

// Alloc fields are pointers so an absent field (older report format,
// renamed key) is distinguishable from a legitimate measured zero.
type benchEntry struct {
	Name        string             `json:"name"`
	NsPerOp     *float64           `json:"ns_per_op"`
	AllocsPerOp *int64             `json:"allocs_per_op"`
	BytesPerOp  *int64             `json:"bytes_per_op"`
	Metrics     map[string]float64 `json:"metrics"`
}

func readBench(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &bf, nil
}

// newestBench finds the most recent BENCH_*.json (lexicographic on the
// timestamped name, which matches recency) that is not the baseline.
func newestBench(baseline string) (string, error) {
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return "", err
	}
	sort.Strings(matches)
	for i := len(matches) - 1; i >= 0; i-- {
		if filepath.Clean(matches[i]) != filepath.Clean(baseline) {
			return matches[i], nil
		}
	}
	return "", fmt.Errorf("no BENCH_*.json candidate found (baseline %s)", baseline)
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline BENCH_*.json (required)")
	threshold := flag.Float64("threshold", 0.20,
		"maximum tolerated fractional tasks/s drop before the gate fails")
	allocThreshold := flag.Float64("allocthreshold", 0.10,
		"maximum tolerated fractional allocs/op growth on warm rows (*Warm benchmarks)")
	bytesThreshold := flag.Float64("bytesthreshold", 0.30,
		"maximum tolerated fractional B/op growth on warm rows (*Warm benchmarks)")
	batchSpeedup := flag.Float64("batchspeedup", 0.85,
		"minimum BatchedSweepWarm/SessionSweepWarm tasks/s ratio in the candidate")
	batchAllocRatio := flag.Float64("batchallocratio", 0.75,
		"maximum BatchedSweepWarm/SessionSweepWarm allocs/op ratio in the candidate")
	pretrainRatio := flag.Float64("pretrainratio", 1.10,
		"maximum PretrainedSweep/ColdSweep ns/op ratio in the candidate")
	flag.Parse()
	if *baseline == "" || flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: perfgate -baseline BASELINE.json [-threshold F] [CANDIDATE.json]")
		os.Exit(2)
	}

	candidate := ""
	if flag.NArg() == 1 {
		candidate = flag.Arg(0)
	} else {
		var err error
		candidate, err = newestBench(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfgate:", err)
			os.Exit(2)
		}
	}

	base, err := readBench(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}
	cand, err := readBench(candidate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfgate:", err)
		os.Exit(2)
	}

	candBy := make(map[string]benchEntry)
	for _, b := range cand.Benchmarks {
		candBy[b.Name] = b
	}

	fmt.Printf("perfgate: %s (baseline) vs %s, thresholds: %.0f%% tasks/s drop, warm rows %.0f%% allocs/op, %.0f%% B/op\n",
		*baseline, candidate, *threshold*100, *allocThreshold*100, *bytesThreshold*100)
	failed := false
	compared := 0
	for _, b := range base.Benchmarks {
		baseV, hasBaseRate := b.Metrics["tasks_per_s"]
		rateGated := hasBaseRate && baseV > 0
		// Memory gates apply to the warm rows only: cold rows pay
		// one-time setup whose allocation count is not the contract,
		// while a warm iteration's allocs/op is the recycling invariant
		// every PR since the worker-pool executor has defended. They do
		// not require the row to also report tasks/s.
		memGated := strings.HasSuffix(b.Name, "Warm") && (b.AllocsPerOp != nil || b.BytesPerOp != nil)
		if !rateGated && !memGated {
			continue
		}
		c, ok := candBy[b.Name]
		if !ok {
			fmt.Printf("  FAIL %-24s missing from candidate\n", b.Name)
			failed = true
			continue
		}
		if rateGated {
			candV, hasRate := c.Metrics["tasks_per_s"]
			if !hasRate {
				fmt.Printf("  FAIL %-24s missing tasks_per_s in candidate\n", b.Name)
				failed = true
			} else {
				compared++
				drop := 1 - candV/baseV
				status := "ok  "
				if drop > *threshold {
					status = "FAIL"
					failed = true
				}
				fmt.Printf("  %s %-24s %12.0f -> %12.0f tasks/s (%+.1f%%)\n",
					status, b.Name, baseV, candV, -drop*100)
			}
		}
		if !memGated {
			continue
		}
		memGate := func(metric string, baseN, candN *int64, limit float64) {
			if baseN == nil || *baseN <= 0 {
				// No baseline to gate against (absent field, or a zero
				// growth cannot be computed from).
				return
			}
			if candN == nil {
				// Absent in the candidate is a missing or renamed
				// field, not an improvement — fail loudly like the
				// rate gate does, or the gate silently stops gating.
				fmt.Printf("  FAIL %-24s missing %s in candidate\n", b.Name, metric)
				failed = true
				return
			}
			compared++
			growth := float64(*candN)/float64(*baseN) - 1
			status := "ok  "
			if growth > limit {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("  %s %-24s %12d -> %12d %s (%+.1f%%)\n",
				status, b.Name, *baseN, *candN, metric, growth*100)
		}
		memGate("allocs/op", b.AllocsPerOp, c.AllocsPerOp, *allocThreshold)
		memGate("B/op", b.BytesPerOp, c.BytesPerOp, *bytesThreshold)
	}
	// Batched-vs-scalar pair gate, entirely inside the candidate: the
	// two rows run the identical sweep request, so their ratio is free
	// of cross-machine variance. Gated only when the baseline carries
	// both rows (reports from before the batched executor pass
	// untouched); a candidate missing either row was already failed by
	// the per-row loop above.
	baseHasPair := 0
	for _, b := range base.Benchmarks {
		if b.Name == "SessionSweepWarm" || b.Name == "BatchedSweepWarm" {
			baseHasPair++
		}
	}
	scalarRow, haveScalar := candBy["SessionSweepWarm"]
	batchedRow, haveBatched := candBy["BatchedSweepWarm"]
	if baseHasPair == 2 && haveScalar && haveBatched {
		scalarRate, batchedRate := scalarRow.Metrics["tasks_per_s"], batchedRow.Metrics["tasks_per_s"]
		if scalarRate > 0 && batchedRate > 0 {
			compared++
			ratio := batchedRate / scalarRate
			status := "ok  "
			if ratio < *batchSpeedup {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("  %s %-24s %.2fx scalar tasks/s (floor %.2fx)\n",
				status, "batched/scalar rate", ratio, *batchSpeedup)
		}
		if scalarRow.AllocsPerOp != nil && *scalarRow.AllocsPerOp > 0 && batchedRow.AllocsPerOp != nil {
			compared++
			ratio := float64(*batchedRow.AllocsPerOp) / float64(*scalarRow.AllocsPerOp)
			status := "ok  "
			if ratio > *batchAllocRatio {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("  %s %-24s %.2fx scalar allocs/op (ceiling %.2fx)\n",
				status, "batched/scalar allocs", ratio, *batchAllocRatio)
		}
	}
	// Pre-trained-vs-cold pair gate, also candidate-internal:
	// PretrainedSweep runs the identical JOSS sweep ColdSweep runs,
	// over a Train-warmed plan cache instead of a fresh one. The hard
	// invariant is zero plan evaluations on the pre-trained row — a
	// claim API that re-searched trained keys (or a trainer that
	// stopped publishing plans) makes it non-zero and fails. The ns/op
	// ceiling is a loose parity guard on top: the rows differ only by
	// search and sampling work, so they must not diverge wildly, but
	// on a single-core runner the deleted work is a few percent of the
	// sweep and inside run-to-run noise (see PERF.md PR 9), so the
	// ceiling sits above 1. Gated only when the baseline carries both
	// rows, like the batched pair.
	baseHasTrainPair := 0
	for _, b := range base.Benchmarks {
		if b.Name == "ColdSweep" || b.Name == "PretrainedSweep" {
			baseHasTrainPair++
		}
	}
	coldRow, haveCold := candBy["ColdSweep"]
	preRow, havePre := candBy["PretrainedSweep"]
	if baseHasTrainPair == 2 && haveCold && havePre &&
		coldRow.NsPerOp != nil && *coldRow.NsPerOp > 0 && preRow.NsPerOp != nil {
		compared++
		ratio := *preRow.NsPerOp / *coldRow.NsPerOp
		status := "ok  "
		if ratio > *pretrainRatio {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("  %s %-24s %.2fx cold ns/op (ceiling %.2fx)\n",
			status, "pretrained/cold time", ratio, *pretrainRatio)
		if evals, ok := preRow.Metrics["plan_evals_per_op"]; ok && evals != 0 {
			fmt.Printf("  FAIL %-24s %g plan evaluations per pre-trained sweep (want 0)\n",
				"pretrained searches", evals)
			failed = true
		}
	}
	// Metrics hot-path gate, candidate-internal and absolute: the
	// MetricsHotPath row (one counter increment plus one histogram
	// observation) must report exactly 0 allocs/op — instrumentation
	// that allocates on the serving path is a regression no matter
	// what the baseline says. Gated whenever the candidate carries the
	// row, so reports from before the observability layer pass.
	if hot, ok := candBy["MetricsHotPath"]; ok && hot.AllocsPerOp != nil {
		compared++
		status := "ok  "
		if *hot.AllocsPerOp != 0 {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("  %s %-24s %d allocs/op (must be 0)\n", status, "metrics hot path", *hot.AllocsPerOp)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "perfgate: baseline carries no tasks_per_s metrics")
		os.Exit(2)
	}
	if failed {
		fmt.Println("perfgate: FAILED — throughput or warm-path allocations regressed beyond the thresholds")
		os.Exit(1)
	}
	fmt.Println("perfgate: passed")
}
