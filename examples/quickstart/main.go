// Quickstart: build a small task application, run it under the JOSS
// scheduler on the simulated Jetson TX2, and compare its energy
// against the GRWS work-stealing baseline.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"joss/internal/dag"
	"joss/internal/models"
	"joss/internal/platform"
	"joss/internal/sched"
	"joss/internal/taskrt"
)

func main() {
	// 1. The platform: an analytic model of the Jetson TX2 (Denver x2
	//    + A57 x4, five CPU frequencies, three memory frequencies).
	oracle := platform.DefaultOracle()

	// 2. The offline stage (once per platform): profile the synthetic
	//    benchmark suite and train the performance / CPU power /
	//    memory power models by multivariate polynomial regression.
	set, err := models.TrainDefault(oracle)
	if err != nil {
		log.Fatal(err)
	}

	// 3. The application: a DAG of two kernels. The "gemm" kernel is
	//    compute-bound, the "stream" kernel is memory-bound — JOSS
	//    will pick different <TC, NC, fC, fM> configurations for each.
	g := dag.New("quickstart")
	gemm := g.AddKernel("gemm", platform.TaskDemand{
		Ops: 30e6, Bytes: 0.8e6, ParEff: 0.95, Activity: 1.0, RowHit: 0.9,
	})
	stream := g.AddKernel("stream", platform.TaskDemand{
		Ops: 0.4e6, Bytes: 3e6, ParEff: 0.9, Activity: 0.4, RowHit: 0.95,
	})
	// Four pipelines of alternating compute and streaming stages.
	for p := 0; p < 4; p++ {
		var prev *dag.Task
		for i := 0; i < 100; i++ {
			k := gemm
			if i%2 == 1 {
				k = stream
			}
			if prev == nil {
				prev = g.AddTask(k)
			} else {
				prev = g.AddTask(k, prev)
			}
		}
	}

	// 4. Run under JOSS and under the GRWS baseline. A runtime is
	//    single-use; build one per run.
	run := func(s taskrt.Scheduler) taskrt.Report {
		g.ResetRuntimeState()
		return taskrt.New(oracle, s, taskrt.DefaultOptions()).Run(g)
	}
	joss := sched.NewJOSS(set)
	repJOSS := run(joss)
	repGRWS := run(sched.NewGRWS())

	fmt.Printf("%-6s makespan %.3fs  CPU %.2fJ  mem %.2fJ  total %.2fJ\n",
		"GRWS", repGRWS.MakespanSec, repGRWS.Exact.CPUJ, repGRWS.Exact.MemJ, repGRWS.Exact.TotalJ())
	fmt.Printf("%-6s makespan %.3fs  CPU %.2fJ  mem %.2fJ  total %.2fJ\n",
		"JOSS", repJOSS.MakespanSec, repJOSS.Exact.CPUJ, repJOSS.Exact.MemJ, repJOSS.Exact.TotalJ())
	fmt.Printf("JOSS saves %.1f%% energy\n",
		100*(1-repJOSS.Exact.TotalJ()/repGRWS.Exact.TotalJ()))

	// 5. Inspect the configurations JOSS selected per kernel.
	for _, k := range g.Kernels {
		if cfg, ok := joss.SelectedConfig(k); ok {
			fmt.Printf("kernel %-8s -> %s\n", k.Name, cfg)
		}
	}
}
