// Tradeoff: explore the energy/performance trade-off space of §5.2.2 —
// run the Sparse LU benchmark under plain JOSS (minimum energy), under
// user-specified performance constraints (1.2x, 1.4x, 1.8x), and under
// MAXP (maximum performance), reproducing the Figure 9 behaviour on a
// single benchmark.
//
// Run with:
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"joss/internal/models"
	"joss/internal/platform"
	"joss/internal/sched"
	"joss/internal/taskrt"
	"joss/internal/workloads"
)

func main() {
	oracle := platform.DefaultOracle()
	set, err := models.TrainDefault(oracle)
	if err != nil {
		log.Fatal(err)
	}

	variants := []struct {
		name string
		mk   func() taskrt.Scheduler
	}{
		{"JOSS (min energy)", func() taskrt.Scheduler { return sched.NewJOSS(set) }},
		{"JOSS +1.2x", func() taskrt.Scheduler { return sched.NewJOSSConstrained(set, 1.2) }},
		{"JOSS +1.4x", func() taskrt.Scheduler { return sched.NewJOSSConstrained(set, 1.4) }},
		{"JOSS +1.8x", func() taskrt.Scheduler { return sched.NewJOSSConstrained(set, 1.8) }},
		{"JOSS +MAXP", func() taskrt.Scheduler { return sched.NewJOSSMaxP(set) }},
	}

	fmt.Printf("%-18s %10s %10s %10s %10s\n", "variant", "time s", "energy J", "speedup", "E overhead")
	var baseT, baseE float64
	for i, v := range variants {
		g := workloads.SLU(0.05)
		rep := taskrt.New(oracle, v.mk(), taskrt.DefaultOptions()).Run(g)
		e := rep.Exact.TotalJ()
		if i == 0 {
			baseT, baseE = rep.MakespanSec, e
		}
		fmt.Printf("%-18s %10.3f %10.3f %9.2fx %+9.1f%%\n",
			v.name, rep.MakespanSec, e, baseT/rep.MakespanSec, 100*(e/baseE-1))
	}
	fmt.Println("\nhigher speedups cost energy — the knob the user controls (paper §7.2)")
}
