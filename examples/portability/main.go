// Portability: the paper's models deliberately use no performance
// counters so they can be retrained on any platform (§4, "Challenges").
// This example demonstrates that claim end to end: it builds a second,
// different board — slower LPDDR4 and a weaker big cluster — retrains
// the models from the same synthetic suite, and shows JOSS adapting
// its per-kernel configurations to the new silicon. It also shows the
// install-time persistence workflow (train once, save, reload).
//
// Run with:
//
//	go run ./examples/portability
package main

import (
	"bytes"
	"fmt"
	"log"

	"joss/internal/models"
	"joss/internal/platform"
	"joss/internal/sched"
	"joss/internal/taskrt"
	"joss/internal/workloads"
)

func main() {
	// Board A: the default TX2-like platform.
	boardA := platform.DefaultOracle()

	// Board B: same socket layout, different silicon — the "big"
	// cluster is barely faster than the little one but burns far more
	// power (an inefficient big core), and the memory is slower and
	// more expensive per byte. On such a board the energy-optimal
	// placements move to the little cluster.
	boardB := platform.DefaultOracle()
	boardB.Core[platform.Denver].PerfGOPS = 1.2
	boardB.Core[platform.Denver].CdynW = 0.9
	boardB.Core[platform.Denver].LeakW = 0.25
	boardB.Mem.LatFreqNs = 140
	boardB.Mem.PeakBWGBs = 30
	boardB.Mem.AccessWPerGBs = 0.14

	run := func(name string, o *platform.Oracle) {
		set, err := models.TrainDefault(o)
		if err != nil {
			log.Fatal(err)
		}

		// Install-time persistence: save and reload the trained set,
		// as cmd/jossprofile -o would.
		var buf bytes.Buffer
		if err := set.Save(&buf); err != nil {
			log.Fatal(err)
		}
		loaded, err := models.Load(&buf, o.Spec)
		if err != nil {
			log.Fatal(err)
		}

		joss := sched.NewJOSS(loaded)
		g := workloads.SLU(0.03)
		rep := taskrt.New(o, joss, taskrt.DefaultOptions()).Run(g)

		fmt.Printf("%s: %.3fs, %.2f J\n", name, rep.MakespanSec, rep.Exact.TotalJ())
		for _, kn := range []string{"BMOD", "FWD"} {
			if cfg, ok := joss.SelectedConfig(g.KernelByName(kn)); ok {
				fmt.Printf("  %-5s -> %s\n", kn, cfg)
			}
		}
	}

	run("board A (TX2-like)", boardA)
	run("board B (weak big cluster, slow DRAM)", boardB)
	fmt.Println("\nsame code, no PMCs, retrained models — different configurations per board")
}
