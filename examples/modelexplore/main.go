// Modelexplore: the model-builder's view (paper §4). Train the three
// JOSS models, then interrogate them for one kernel: estimate its
// memory-boundness from two time samples (Eq. 3), print the predicted
// execution-time / power / energy landscape across <fC, fM>, and
// compare the steepest-descent pick (Figure 7) with the true optimum.
//
// Run with:
//
//	go run ./examples/modelexplore
package main

import (
	"fmt"
	"log"

	"joss/internal/models"
	"joss/internal/platform"
	"joss/internal/search"
)

func main() {
	oracle := platform.DefaultOracle()
	set, err := models.TrainDefault(oracle)
	if err != nil {
		log.Fatal(err)
	}

	// A moderately memory-bound kernel the models have never seen.
	kernel := platform.TaskDemand{
		Kernel: "explore", Ops: 6e6, Bytes: 4e6,
		ParEff: 0.9, Activity: 0.7, RowHit: 0.6,
	}

	// Runtime sampling (§5.1): two execution-time samples per
	// placement, at 2.04 GHz and 1.11 GHz, memory at maximum.
	samples := make(map[platform.Placement]models.SamplePair)
	for _, pl := range oracle.Spec.Placements() {
		ref := oracle.Measure(kernel, platform.Config{TC: pl.TC, NC: pl.NC, FC: models.RefFC, FM: models.RefFM})
		alt := oracle.Measure(kernel, platform.Config{TC: pl.TC, NC: pl.NC, FC: models.AltFC, FM: models.RefFM})
		samples[pl] = models.SamplePair{TimeRef: ref.TimeSec, TimeAlt: alt.TimeSec}
	}
	kt := set.BuildTables("explore", samples)

	fmt.Println("estimated memory-boundness (Eq. 3) per placement:")
	for _, pl := range oracle.Spec.Placements() {
		fmt.Printf("  %-14s MB = %.1f%%\n", pl.String(), 100*kt.MB[pl])
	}

	pl := platform.Placement{TC: platform.A57, NC: 2}
	fmt.Printf("\npredicted landscape on %s (time ms / total power W / energy mJ):\n", pl)
	fmt.Printf("%-12s", "fC \\ fM")
	for fm := range platform.MemFreqsGHz {
		fmt.Printf("  %14.2f GHz", platform.MemFreqsGHz[fm])
	}
	fmt.Println()
	for fc := range platform.CPUFreqsGHz {
		fmt.Printf("%-12.2f", platform.CPUFreqsGHz[fc])
		for fm := range platform.MemFreqsGHz {
			cfg := platform.Config{TC: pl.TC, NC: pl.NC, FC: fc, FM: fm}
			p, _ := kt.At(cfg)
			energy, _ := set.EnergyEstimate(kt, cfg, 1)
			pw := p.CPUDynW + p.MemDynW + set.IdlePowerShare(cfg.TC, cfg.FC, cfg.FM, 1)
			fmt.Printf("  %5.2f/%4.2f/%5.1f", p.TimeSec*1e3, pw, energy*1e3)
		}
		fmt.Println()
	}

	// Configuration selection (§5.2): steepest descent vs exhaustive.
	energyFn := func(cfg platform.Config) (float64, bool) {
		return set.EnergyEstimate(kt, cfg, 1)
	}
	sd := search.SteepestDescent(oracle.Spec, energyFn)
	ex := search.Exhaustive(oracle.Spec, energyFn)
	fmt.Printf("\nsteepest descent: %s  (%.3f mJ, %d evaluations)\n",
		sd.Cfg, sd.Energy*1e3, sd.Evals)
	fmt.Printf("exhaustive:       %s  (%.3f mJ, %d evaluations)\n",
		ex.Cfg, ex.Energy*1e3, ex.Evals)
	fmt.Printf("pruning saved %.0f%% of evaluations (paper §7.4: ~70%%)\n",
		100*(1-float64(sd.Evals)/float64(ex.Evals)))

	// How good are the predictions? Compare against ground truth.
	var acc []float64
	for _, cfg := range oracle.Spec.Configs() {
		real := oracle.Measure(kernel, cfg)
		pred, _ := kt.At(cfg)
		acc = append(acc, models.Accuracy(real.TimeSec, pred.TimeSec))
	}
	mean := 0.0
	for _, a := range acc {
		mean += a
	}
	fmt.Printf("\nperformance-model accuracy on this kernel: %.1f%% (paper mean: 97%%)\n",
		100*mean/float64(len(acc)))
}
