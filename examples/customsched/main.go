// Customsched: implement your own scheduler against the taskrt
// runtime interface and race it against the built-in ones on a
// user-defined workload. The custom policy here is "oracle-greedy":
// an unrealistic scheduler that asks the hardware model directly for
// each kernel's true minimum-energy configuration — an upper bound no
// model-driven scheduler can beat, useful for judging how much of the
// headroom JOSS captures.
//
// Run with:
//
//	go run ./examples/customsched
package main

import (
	"fmt"
	"log"
	"math"

	"joss/internal/dag"
	"joss/internal/models"
	"joss/internal/platform"
	"joss/internal/sched"
	"joss/internal/taskrt"
	"joss/internal/workloads"
)

// oracleGreedy picks, for every kernel, the configuration that
// minimises the oracle's standalone task energy. It cheats: real
// schedulers only see measurements, not the hardware model.
type oracleGreedy struct {
	o      *platform.Oracle
	chosen map[*dag.Kernel]platform.Config
}

func (s *oracleGreedy) Name() string               { return "OracleGreedy" }
func (s *oracleGreedy) Attach(rt *taskrt.Runtime)  {}
func (s *oracleGreedy) Scope() taskrt.StealScope   { return taskrt.StealSameType }
func (s *oracleGreedy) TaskDone(taskrt.ExecRecord) {}

func (s *oracleGreedy) Decide(t *dag.Task) taskrt.Decision {
	cfg, ok := s.chosen[t.Kernel]
	if !ok {
		best := math.Inf(1)
		for _, c := range s.o.Spec.Configs() {
			if e := s.o.Measure(t.Kernel.Demand, c).TotalEnergy(); e < best {
				best, cfg = e, c
			}
		}
		s.chosen[t.Kernel] = cfg
	}
	return taskrt.Decision{
		Placement: platform.Placement{TC: cfg.TC, NC: cfg.NC},
		SetFreq:   true, FC: cfg.FC, FM: cfg.FM,
	}
}

func main() {
	oracle := platform.DefaultOracle()
	set, err := models.TrainDefault(oracle)
	if err != nil {
		log.Fatal(err)
	}

	build := func() *dag.Graph { return workloads.ST(2048, 16, 0.02) }

	contenders := []struct {
		name string
		mk   func() taskrt.Scheduler
	}{
		{"GRWS", func() taskrt.Scheduler { return sched.NewGRWS() }},
		{"STEER", func() taskrt.Scheduler { return sched.NewSTEER(set) }},
		{"JOSS", func() taskrt.Scheduler { return sched.NewJOSS(set) }},
		{"OracleGreedy", func() taskrt.Scheduler {
			return &oracleGreedy{o: oracle, chosen: make(map[*dag.Kernel]platform.Config)}
		}},
	}

	fmt.Printf("%-14s %10s %12s\n", "scheduler", "time s", "energy J")
	for _, c := range contenders {
		rep := taskrt.New(oracle, c.mk(), taskrt.DefaultOptions()).Run(build())
		fmt.Printf("%-14s %10.3f %12.3f\n", c.name, rep.MakespanSec, rep.Exact.TotalJ())
	}
	fmt.Println("\nOracleGreedy bounds what any per-task policy could achieve;")
	fmt.Println("JOSS approaches it using only runtime samples and MPR models.")
}
