// Package joss_test hosts the benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (run them
// with `go test -bench=. -benchmem`), plus ablation benches for the
// design choices called out in DESIGN.md §5. Custom metrics attach the
// headline quantity of each experiment (normalised energy, accuracy,
// evaluation reduction) to the benchmark output, so a single bench run
// regenerates the paper's numbers alongside the usual ns/op.
package joss_test

import (
	"fmt"
	"sync"
	"testing"

	"joss/internal/exp"
	"joss/internal/platform"
	"joss/internal/sched"
	"joss/internal/taskrt"
	"joss/internal/workloads"
)

// benchScale keeps each bench iteration fast; experiments at paper
// scale are run via cmd/jossbench.
const benchScale = 0.01

var (
	envOnce sync.Once
	envG    *exp.Env
)

func benchEnv(b *testing.B) *exp.Env {
	b.Helper()
	envOnce.Do(func() {
		e, err := exp.NewEnv(benchScale)
		if err != nil {
			panic(err)
		}
		envG = e
	})
	return envG
}

// BenchmarkTable1 regenerates the benchmark inventory.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(exp.Table1().Rows) != 10 {
			b.Fatal("Table 1 incomplete")
		}
	}
}

// BenchmarkFig1 regenerates the Figure 1 motivation study (four
// configuration-selection scenarios for MM and MC).
func BenchmarkFig1(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(e.Fig1().Rows) != 8 {
			b.Fatal("Fig1 incomplete")
		}
	}
}

// BenchmarkFig2 regenerates the Figure 2 trade-off ladder.
func BenchmarkFig2(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(e.Fig2().Rows) == 0 {
			b.Fatal("Fig2 incomplete")
		}
	}
}

// BenchmarkFig5 regenerates the Figure 5 synthetic power profile.
func BenchmarkFig5(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(e.Fig5().Rows) != 15 {
			b.Fatal("Fig5 incomplete")
		}
	}
}

// BenchmarkFig8 regenerates the headline Figure 8 sweep (21 benchmark
// configurations x 6 schedulers) and reports the JOSS and STEER
// geomean energies normalised to GRWS.
func BenchmarkFig8(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	var res *exp.Fig8Result
	for i := 0; i < b.N; i++ {
		res = e.Fig8()
	}
	b.ReportMetric(res.GeoMean["JOSS"], "JOSS-vs-GRWS")
	b.ReportMetric(res.GeoMean["STEER"], "STEER-vs-GRWS")
	b.ReportMetric(res.GeoMean["JOSS_NoMemDVFS"], "NoMemDVFS-vs-GRWS")
}

// BenchmarkFig9 regenerates the Figure 9 performance-constraint sweep.
func BenchmarkFig9(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	var res *exp.Fig9Result
	for i := 0; i < b.N; i++ {
		res = e.Fig9()
	}
	mean := 0.0
	for _, m := range res.NormEnergy {
		mean += m["JOSS+1.8X"]
	}
	b.ReportMetric(mean/float64(len(res.NormEnergy)), "E(1.8X)-vs-JOSS")
}

// BenchmarkFig10 regenerates the Figure 10 model-accuracy study and
// reports the three mean accuracies (paper: 0.97 / 0.90 / 0.80).
func BenchmarkFig10(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	var res *exp.Fig10Result
	for i := 0; i < b.N; i++ {
		res = e.Fig10()
	}
	b.ReportMetric(res.PerfMean, "perf-accuracy")
	b.ReportMetric(res.CPUMean, "cpu-accuracy")
	b.ReportMetric(res.MemMean, "mem-accuracy")
}

// BenchmarkOverhead regenerates the §7.4 search-overhead comparison
// and reports the evaluation reduction (paper: ~70%).
func BenchmarkOverhead(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	var res *exp.OverheadResult
	for i := 0; i < b.N; i++ {
		res = e.Overhead()
	}
	b.ReportMetric(res.MeanEvalReduction, "eval-reduction")
	b.ReportMetric(res.MeanEnergyRatio, "exh/sd-energy")
}

// BenchmarkAblationCoordination compares the frequency-coordination
// heuristics of §5.3 (the paper evaluated min, max, weighted average
// and arithmetic mean, and found the mean best) on a high-concurrency
// workload with conflicting per-kernel frequency targets.
func BenchmarkAblationCoordination(b *testing.B) {
	e := benchEnv(b)
	modes := []struct {
		name string
		mode taskrt.CoordMode
	}{
		{"Mean", taskrt.CoordMean},
		{"Min", taskrt.CoordMin},
		{"Max", taskrt.CoordMax},
		{"Override", taskrt.CoordOverride},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			var energy float64
			for i := 0; i < b.N; i++ {
				opt := taskrt.DefaultOptions()
				opt.Coord = m.mode
				rt := taskrt.New(e.Oracle, sched.NewJOSS(e.Set), opt)
				rep := rt.Run(workloads.VG(benchScale * 4))
				energy = exp.EnergyOf(rep).TotalJ()
			}
			b.ReportMetric(energy, "J")
		})
	}
}

// BenchmarkAblationCoarsening compares JOSS with and without the
// fine-grained task coarsening of §5.3 on Fibonacci, the benchmark
// whose tasks are microseconds long.
func BenchmarkAblationCoarsening(b *testing.B) {
	e := benchEnv(b)
	cases := []struct {
		name      string
		threshold float64
	}{
		{"Coarsened", 200e-6},
		// A one-nanosecond threshold effectively disables coarsening:
		// every task issues its own DVFS request.
		{"PerTaskDVFS", 1e-9},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var trans int
			var energy float64
			for i := 0; i < b.N; i++ {
				s := sched.NewModelSched(e.Set, sched.Options{
					Name: "JOSS", Goal: sched.GoalMinEnergy, MemDVFS: true,
					CoarsenThresholdSec: c.threshold,
				})
				rep := e.RunSched(s, workloads.FB(benchScale*4))
				trans = rep.Stats.TransitionsCPU + rep.Stats.TransitionsMem
				energy = exp.EnergyOf(rep).TotalJ()
			}
			b.ReportMetric(float64(trans), "transitions")
			b.ReportMetric(energy, "J")
		})
	}
}

// BenchmarkAblationObjective isolates the paper's central claim
// (§2.1): the same machinery with a CPU-energy objective (STEER), a
// total-energy objective without the memory knob (JOSS_NoMemDVFS) and
// the full four-knob objective (JOSS), on the memory-heavy AL mesh.
func BenchmarkAblationObjective(b *testing.B) {
	e := benchEnv(b)
	for _, name := range []string{"STEER", "JOSS_NoMemDVFS", "JOSS"} {
		b.Run(name, func(b *testing.B) {
			var energy float64
			for i := 0; i < b.N; i++ {
				rep := e.Run(name, workloads.AL(benchScale))
				energy = exp.EnergyOf(rep).TotalJ()
			}
			b.ReportMetric(energy, "J")
		})
	}
}

// BenchmarkAblationSampling varies the second sampling frequency of
// §5.1 (the models package defaults to 1.11 GHz, well separated from
// the 2.04 GHz reference): a closer frequency pair degrades the MB
// estimate of Eq. 3 and with it the selected configurations.
func BenchmarkAblationSampling(b *testing.B) {
	e := benchEnv(b)
	// End-to-end proxy: accuracy of MB estimation for the ST kernel
	// across alternate frequencies.
	d := workloads.ST(2048, 4, benchScale).KernelByName("st_update").Demand
	for _, alt := range []int{0, 1, 2, 3} {
		name := fmt.Sprintf("alt=%.2fGHz", platform.CPUFreqsGHz[alt])
		b.Run(name, func(b *testing.B) {
			var mb float64
			for i := 0; i < b.N; i++ {
				pl := platform.Placement{TC: platform.A57, NC: 2}
				ref := e.Oracle.Measure(d, platform.Config{TC: pl.TC, NC: pl.NC, FC: 4, FM: 2})
				a := e.Oracle.Measure(d, platform.Config{TC: pl.TC, NC: pl.NC, FC: alt, FM: 2})
				mb = estimateMB(ref.TimeSec, a.TimeSec, 4, alt)
			}
			b.ReportMetric(mb, "MB")
		})
	}
}

// BenchmarkRuntimeThroughput measures raw simulator throughput: tasks
// executed per second of wall time under the cheapest scheduler. Each
// iteration pays the full cold-start cost (fresh Runtime, Machine and
// graph) — the baseline BenchmarkSweepReuse amortises.
func BenchmarkRuntimeThroughput(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	tasks := 0
	for i := 0; i < b.N; i++ {
		rep := e.Run("GRWS", workloads.SLU(0.05))
		tasks += rep.Stats.TasksExecuted
	}
	b.ReportMetric(float64(tasks)/b.Elapsed().Seconds(), "tasks/s")
}

// BenchmarkSweepReuse measures the same simulation as
// BenchmarkRuntimeThroughput executed the way a warm sweep worker runs
// it: the Runtime is rewound with Reset (retaining engine event pool,
// machine, exec-state/decision pools and the oracle memo) and the
// graph is rebuilt into recycled arenas. allocs/op is the headline —
// it must sit far below the ~422/op cold-start figure.
func BenchmarkSweepReuse(b *testing.B) {
	e := benchEnv(b)
	var slu workloads.Config
	for _, c := range workloads.Fig8Configs() {
		if c.Name == "SLU" {
			slu = c
		}
	}
	g := slu.Build(0.05)
	opt := taskrt.DefaultOptions()
	opt.Seed = e.Seed
	rt := taskrt.New(e.Oracle, sched.NewGRWS(), opt)
	rt.Run(g) // warm the worker
	b.ReportAllocs()
	b.ResetTimer()
	tasks := 0
	for i := 0; i < b.N; i++ {
		g = slu.BuildReuse(g, 0.05)
		rt.Sched = sched.NewGRWS()
		rt.Reset(g)
		rep := rt.Run(g)
		tasks += rep.Stats.TasksExecuted
	}
	b.ReportMetric(float64(tasks)/b.Elapsed().Seconds(), "tasks/s")
}

func estimateMB(tRef, tAlt float64, refIdx, altIdx int) float64 {
	fRef := platform.CPUFreqsGHz[refIdx]
	fAlt := platform.CPUFreqsGHz[altIdx]
	r := fRef / fAlt
	if r == 1 {
		return 0
	}
	mb := (tAlt/tRef - r) / (1 - r)
	if mb < 0 {
		return 0
	}
	if mb > 1 {
		return 1
	}
	return mb
}
