module joss

go 1.24.0
